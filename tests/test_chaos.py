"""Chaos suite: seeded fault plans against programs with known verdicts.

The robustness contract under deterministic fault injection
(:mod:`repro.faults`) is graded, never wrong:

- an injected *crash* may surface as an error (``ReproError`` escaping
  ``prove_termination``) or be absorbed by the degradation ladder,
- an injected *delay* may push the run into its timeout,
- an injected *wrong answer* (adversarially flipped solver verdict)
  must be caught by the verdict firewall,

but under no plan may the analysis return the *opposite* conclusive
verdict, and no run may blow unboundedly past its wall-clock budget.
"""

import time

import pytest

import repro.faults as faults
from repro.core.api import prove_termination_source
from repro.core.budget import ReproError
from repro.core.config import AnalysisConfig
from repro.faults import FaultPlan

TIMEOUT = 5.0
#: Slack past the timeout before a run counts as a deadline overrun:
#: the firewall allowance plus scheduling noise (mirrors the worker
#: pool's kill grace).
SLACK = 10.0

COUNTDOWN = """
program countdown(x):
    while x > 0:
        x := x - 1
"""

DIVERGING = """
program up(x):
    while x > 0:
        x := x + 1
"""

PROGRAMS = (
    (COUNTDOWN, "terminating", "nonterminating"),
    (DIVERGING, "nonterminating", "terminating"),
)

#: 7 seeds x 3 shapes = 21 deterministic plans (the issue asks for >= 20).
SHAPES = (
    ("crash", dict(crash_rate=0.05)),
    ("mixed", dict(crash_rate=0.02, delay_rate=0.2, delay_seconds=0.001)),
    ("flip", dict(wrong_answer_rate=0.15)),
)
PLANS = [
    pytest.param(FaultPlan(seed=seed, **kwargs), id=f"{shape}-seed{seed}")
    for shape, kwargs in SHAPES
    for seed in range(7)
]


def run_under(plan: FaultPlan, source: str):
    """One analysis under ``plan``; returns (outcome, injected, seconds).

    ``outcome`` is the verdict value, or ``"error"`` when an injected
    crash escaped -- an *allowed* outcome, never a wrong answer.
    """
    config = AnalysisConfig(timeout=TIMEOUT)  # fault_plan=None: the
    # outer use_plan below stays the active injector, so its counters
    # are observable after the run.
    start = time.perf_counter()
    with faults.use_plan(plan):
        try:
            result = prove_termination_source(source, config)
            outcome = result.verdict.value
        except ReproError:
            outcome = "error"
        injected = faults.injected_counts()
    return outcome, injected, time.perf_counter() - start


@pytest.mark.parametrize("plan", PLANS)
def test_no_unsound_verdict_under_faults(plan):
    for source, expected, forbidden in PROGRAMS:
        outcome, _, seconds = run_under(plan, source)
        assert outcome != forbidden, \
            f"unsound verdict {outcome!r} under {plan!r}"
        assert outcome in (expected, "unknown", "error")
        assert seconds <= TIMEOUT + SLACK, \
            f"deadline overrun: {seconds:.1f}s under {plan!r}"


def test_chaos_plans_actually_inject():
    """The suite must exercise real faults, not a dormant injector."""
    totals = {"crash": 0, "delay": 0, "flip": 0}
    for shape, kwargs in SHAPES:
        plan = FaultPlan(seed=0, **kwargs)
        for source, _, _ in PROGRAMS:
            _, injected, _ = run_under(plan, source)
            for site_counts in injected.values():
                for kind, n in site_counts.items():
                    totals[kind] += n
    assert totals["crash"] > 0
    assert totals["flip"] > 0


def test_crash_plan_is_deterministic():
    """Same seed, same program => same outcome (no wall-clock coupling)."""
    plan = FaultPlan(seed=4, crash_rate=0.05)
    first = run_under(plan, COUNTDOWN)[0]
    second = run_under(plan, COUNTDOWN)[0]
    assert first == second


def test_flip_plans_never_flip_the_verdict():
    """Adversarial solver answers are the firewall's core threat model."""
    for seed in range(7):
        plan = FaultPlan(seed=seed, wrong_answer_rate=0.3)
        for source, expected, forbidden in PROGRAMS:
            outcome, _, _ = run_under(plan, source)
            assert outcome in (expected, "unknown", "error")
            assert outcome != forbidden


#: Seeded plans aimed at the durable-checkpoint write path.
CHECKPOINT_PLANS = [
    pytest.param(FaultPlan(seed=seed, crash_rate=rate,
                           sites=("checkpoint.write",)),
                 id=f"ckpt-rate{rate}-seed{seed}")
    for rate in (0.5, 1.0)
    for seed in range(5)
]


@pytest.mark.parametrize("plan", CHECKPOINT_PLANS)
def test_checkpoint_write_faults_never_flip_verdicts(plan, tmp_path):
    """Torn/partial checkpoint writes cost durability, never soundness.

    Each program runs twice under the plan: the first run's saves may
    be lost to injected crashes (leaving torn files and orphaned tmps
    behind), and the second run must either reject those artifacts into
    a clean cold start or restore only re-validated rounds -- with the
    correct verdict both times.
    """
    from repro.core.checkpoint import Checkpointer

    for index, (source, expected, forbidden) in enumerate(PROGRAMS):
        directory = tmp_path / f"ckpt{index}"
        config = AnalysisConfig(timeout=TIMEOUT)
        for attempt in range(2):
            checkpoint = Checkpointer(str(directory), f"chaos-{index}")
            with faults.use_plan(plan):
                try:
                    result = prove_termination_source(
                        source, config, checkpoint=checkpoint)
                    outcome = result.verdict.value
                except ReproError:
                    outcome = "error"
            assert outcome != forbidden, \
                f"unsound verdict {outcome!r} under {plan!r}"
            assert outcome in (expected, "unknown", "error")
            # whatever the injected write crashes left on disk, a
            # restore never seeds unvalidated rounds
            assert checkpoint.restored_rounds >= 0
            if checkpoint.rejected is not None:
                # rejected checkpoints mean a cold start happened --
                # and the verdict above was still correct
                assert checkpoint.restored_rounds == 0


def test_checkpoint_write_fault_plans_actually_inject(tmp_path):
    from repro.core.checkpoint import Checkpointer

    plan = FaultPlan(seed=0, crash_rate=1.0, sites=("checkpoint.write",))
    checkpoint = Checkpointer(str(tmp_path), "inject-check")
    with faults.use_plan(plan):
        prove_termination_source(COUNTDOWN, AnalysisConfig(timeout=TIMEOUT),
                                 checkpoint=checkpoint)
        injected = faults.injected_counts()
    assert injected.get("checkpoint.write", {}).get("crash", 0) >= 1
    assert checkpoint.saved == 0
    assert checkpoint.save_failures >= 1


def test_worker_site_faults_become_error_rows(tmp_path):
    """A crash at the worker site surfaces as resumable error rows."""
    from repro.runner.corpus import run_corpus
    from repro.runner.pool import WorkerPool, analysis_task

    plan = FaultPlan(seed=0, crash_rate=1.0, sites=("worker",))
    manifest = {
        "name": "chaos-pool", "task_timeout": 30,
        "programs": [
            {"name": "a", "expected": "terminating", "source": COUNTDOWN},
            {"name": "b", "expected": "nonterminating", "source": DIVERGING},
        ],
        "configs": [{"name": "faulty", "fault_plan": plan.to_json()}],
    }
    pool = WorkerPool(workers=1, task=analysis_task, task_timeout=30,
                      inprocess=True)
    summary = run_corpus(manifest, tmp_path / "results.jsonl", pool=pool)
    assert summary.errors == 2
    assert all(row.get("status") == "error" for row in summary.rows)


#: Seeded plans aimed at the module-library publish path: every publish
#: replaces the honest entry with a plausibly-corrupted one.
LIBRARY_PLANS = [
    pytest.param(FaultPlan(seed=seed, crash_rate=1.0,
                           sites=("library.publish",)),
                 id=f"lib-seed{seed}")
    for seed in range(3)
]


@pytest.mark.parametrize("plan", LIBRARY_PLANS)
def test_tampered_library_entries_are_rejected_not_trusted(plan, tmp_path):
    """A poisoned module library costs work, never soundness.

    The first run publishes under the fault, so only tampered entries
    (certificates silently missing one state's predicate) reach the
    shared file.  The second run's queries find candidates that decode
    and accept the counterexample word -- the Definition 3.1 re-check
    must reject every one and fall back to synthesis, with the correct
    verdict both times and zero library hits.
    """
    from repro.core.library import ModuleLibrary

    for index, (source, expected, forbidden) in enumerate(PROGRAMS):
        path = tmp_path / f"lib{index}.jsonl"
        config = AnalysisConfig(timeout=TIMEOUT)
        for attempt in range(2):
            library = ModuleLibrary(path)
            with faults.use_plan(plan):
                try:
                    result = prove_termination_source(
                        source, config, library=library)
                    outcome = result.verdict.value
                except ReproError:
                    outcome = "error"
                injected = faults.injected_counts()
            assert outcome != forbidden, \
                f"unsound verdict {outcome!r} under {plan!r}"
            assert outcome in (expected, "unknown", "error")
            assert library.hits == 0  # nothing tampered was ever reused
            if attempt == 0 and outcome == expected == "terminating":
                # the fault actually fired on every publish attempt
                assert injected.get("library.publish", {}) \
                               .get("crash", 0) >= 1
                assert library.published == 0
                assert library.publish_failures >= 1
            if attempt == 1 and path.exists() and outcome == "terminating":
                assert library.rejected >= 1, \
                    "tampered entries must be rejected, not ignored"
