"""Tests for statistics collection and configuration plumbing."""

import pytest

from repro.core.config import AnalysisConfig, StageSequence
from repro.core.stages import Stage
from repro.core.stats import AnalysisStats, RefinementRound, StatsCollector


def test_stage_sequences_well_formed():
    for name, sequence in StageSequence.BY_NAME.items():
        assert sequence, name
        assert sequence[-1] is Stage.NONDET, name
        # stages appear at most once
        assert len(sequence) == len(set(sequence)), name
    # fin always precedes the powerset stages in the multi sequences
    for name in ("i", "ii", "iii"):
        sequence = StageSequence.BY_NAME[name]
        assert sequence[0] is Stage.FINITE, name


def test_config_with_creates_modified_copy():
    base = AnalysisConfig()
    changed = base.with_(timeout=1.5, max_refinements=3)
    assert changed.timeout == 1.5
    assert changed.max_refinements == 3
    assert base.timeout is None
    assert changed.stages == base.stages


def test_config_is_hashable_value():
    assert AnalysisConfig() == AnalysisConfig()
    assert AnalysisConfig() != AnalysisConfig(subsumption=False)
    assert hash(AnalysisConfig()) == hash(AnalysisConfig())


def test_describe_mentions_all_options():
    config = AnalysisConfig(lazy_complement=False, subsumption=True,
                            interpolant_modules=True, via_semidet=True)
    described = config.describe()
    for token in ("ncsb-original", "subsumption", "interpolants", "semidet"):
        assert token in described


def test_stats_record_round_updates_aggregates():
    stats = AnalysisStats(program="p", config="c")
    stats.record_round(RefinementRound(word="w1", proof_kind="ranked",
                                       stage="semi", difference_states=10))
    stats.record_round(RefinementRound(word="w2", proof_kind="ranked",
                                       stage="semi", difference_states=50))
    stats.record_round(RefinementRound(word="w3", proof_kind="stem-infeasible",
                                       stage="finite", difference_states=5))
    assert stats.iterations == 3
    assert stats.modules_by_stage == {"semi": 2, "finite": 1}
    assert stats.peak_difference_states == 50
    summary = stats.summary()
    assert "3 rounds" in summary
    assert "semi=2" in summary


def test_stats_round_without_stage_not_counted_as_module():
    stats = AnalysisStats()
    stats.record_round(RefinementRound(word="w", proof_kind="nonterminating"))
    assert stats.iterations == 1
    assert not stats.modules_by_stage


def test_collector_finish_stamps_metadata():
    collector = StatsCollector()
    stats = collector.finish("prog", "cfg", "timeout")
    assert stats.program == "prog"
    assert stats.config == "cfg"
    assert stats.gave_up_reason == "timeout"
    assert stats.total_seconds >= 0


def test_collector_sdba_capture_flag():
    from repro.automata.gba import ba
    auto = ba({"a"}, {("q", "a"): {"q"}}, ["q"], ["q"])
    off = StatsCollector(capture_sdbas=False)
    off.observe_sdba(auto)
    assert off.sdbas == []
    on = StatsCollector(capture_sdbas=True)
    on.observe_sdba(auto)
    assert on.sdbas == [auto]


def test_describe_mentions_nosim_only_when_reduction_off():
    assert "nosim" not in AnalysisConfig().describe()
    assert "nosim" in AnalysisConfig(simulation_reduction=False).describe()


def test_config_round_trips_simulation_fields():
    config = AnalysisConfig(simulation_reduction=False, simulation_cap=1234)
    data = config.to_dict()
    assert data["simulation_reduction"] is False
    assert data["simulation_cap"] == 1234
    assert AnalysisConfig.from_dict(data) == config
    # the default round-trips too (flag on, finite default cap)
    default = AnalysisConfig()
    assert AnalysisConfig.from_dict(default.to_dict()) == default
    assert default.simulation_reduction is True


def test_refinement_round_records_companion_stage():
    stats = AnalysisStats(program="p", config="c")
    plain = RefinementRound(word="w1", proof_kind="ranked", stage="interp",
                            difference_states=4)
    companion = RefinementRound(word="w2", proof_kind="ranked", stage="interp",
                                companion_stage="finite", difference_states=7)
    stats.record_round(plain)
    stats.record_round(companion)
    from dataclasses import asdict
    assert asdict(plain)["companion_stage"] is None
    assert asdict(companion)["companion_stage"] == "finite"
    rebuilt = AnalysisStats.from_dict(stats.to_dict())
    assert rebuilt.rounds[1].companion_stage == "finite"


def test_collector_observe_companion_accumulates():
    from repro.automata.emptiness import RemovalStats
    from repro.automata.gba import ba

    class FakeResult:
        def __init__(self):
            self.automaton = ba({"a"}, {("q", "a"): {"q"}}, ["q"], ["q"])
            self.stats = RemovalStats()
            self.stats.explored_states = 5
            self.stats.subsumption_hits = 2
            self.stats.cache_hits = 3
            self.stats.cache_misses = 4
            self.stats.peak_pending_edges = 9

    collector = StatsCollector()
    round_stats = RefinementRound(word="w", proof_kind="ranked",
                                  stage="interp", difference_states=40,
                                  explored_states=10, subsumption_hits=1,
                                  cache_hits=1, cache_misses=1,
                                  peak_pending_edges=2)
    collector.observe_companion(round_stats, FakeResult(), "finite")
    assert round_stats.companion_stage == "finite"
    # exploration counters accumulate across the two subtractions ...
    assert round_stats.explored_states == 15
    assert round_stats.subsumption_hits == 3
    assert round_stats.cache_hits == 4
    assert round_stats.cache_misses == 5
    assert round_stats.peak_pending_edges == 9
    # ... while difference_states reflects the final (companion) result
    assert round_stats.difference_states == 1
