"""Tests for the parser, AST conditions, and CFG construction."""

import pytest

from repro.logic.atoms import atom_ge, atom_gt, atom_le, atom_lt
from repro.logic.linconj import conj
from repro.logic.terms import var
from repro.program.ast import (Block, BoolAnd, BoolConst, BoolNot, BoolOr,
                               Comparison, Nondet, SAssign, SAssume, SHavoc,
                               SIf, SWhile)
from repro.program.cfg import build_cfg
from repro.program.parser import ParseError, parse_program
from repro.program.statements import Assign, Assume, Havoc


# -- parser -----------------------------------------------------------------------

def test_parse_header():
    prog = parse_program("program foo(a, b, c):\n    skip\n")
    assert prog.name == "foo"
    assert prog.variables == ("a", "b", "c")


def test_parse_no_variables():
    prog = parse_program("program bare():")
    assert prog.variables == ()
    assert len(prog.body) == 0


def test_parse_assignment_forms():
    prog = parse_program("""
program p(x):
    x := 2 * x + 1
    x ++
    x --
""")
    stmts = list(prog.body)
    assert stmts[0] == SAssign("x", 2 * var("x") + 1)
    assert stmts[1] == SAssign("x", var("x") + 1)
    assert stmts[2] == SAssign("x", var("x") - 1)


def test_parse_nested_structure():
    prog = parse_program("""
program p(x, y):
    while x > 0:
        if y > 0:
            y := y - 1
        else:
            x := x - 1
            havoc y
""")
    (loop,) = list(prog.body)
    assert isinstance(loop, SWhile)
    (branch,) = list(loop.body)
    assert isinstance(branch, SIf)
    assert isinstance(list(branch.then_branch)[0], SAssign)
    assert isinstance(list(branch.else_branch)[1], SHavoc)


def test_parse_boolean_conditions():
    prog = parse_program("""
program p(x, y):
    assume x > 0 and (y < 3 or not x == y)
    while *:
        skip
""")
    stmts = list(prog.body)
    cond = stmts[0].cond
    assert isinstance(cond, BoolAnd)
    assert isinstance(list(prog.body)[1].cond, Nondet)


def test_parse_comments_and_blank_lines():
    prog = parse_program("""
# leading comment
program p(x):   # trailing comment

    x := x + 1  # increment
""")
    assert len(prog.body) == 1


def test_parse_errors():
    bad_sources = [
        "",                                       # empty
        "program p(x)\n    skip",                 # missing colon
        "program p(x, x):\n    skip",             # duplicate variable
        "program p(x):\n    while x > 0:",        # empty while body
        "program p(x):\n    else:\n        skip",  # dangling else
        "program p(x):\n    x := x * y",          # nonlinear
        "program p(x):\n    x := := 3",           # junk
        "program p(x):\n  skip\n      skip",      # bad indent
        "program p(x):\n\tskip",                  # tab indentation
        "program p(x):\n    x := 1 2",            # trailing tokens
        "program p(x):\n    while := 0:\n        skip",  # keyword misuse
    ]
    for source in bad_sources:
        with pytest.raises(ParseError):
            parse_program(source)


def test_parse_error_carries_line():
    try:
        parse_program("program p(x):\n    x := x * x\n")
    except ParseError as err:
        assert err.line == 2


def test_precedence_or_binds_weaker_than_and():
    prog = parse_program("""
program p(x, y):
    assume x > 0 and y > 0 or x < 0
""")
    cond = list(prog.body)[0].cond
    assert isinstance(cond, BoolOr)
    assert isinstance(cond.parts[0], BoolAnd)


# -- conditions to DNF -----------------------------------------------------------------

x, y = var("x"), var("y")


def test_comparison_dnf():
    assert Comparison("<", x, y).dnf() == [conj(atom_lt(x, y))]
    neq = Comparison("!=", x, y).dnf()
    assert len(neq) == 2


def test_comparison_negated_dnf():
    (only,) = Comparison("<=", x, y).negated_dnf()
    assert only.entails_atom(atom_gt(x, y))
    eq_branches = Comparison("==", x, y).negated_dnf()
    assert len(eq_branches) == 2


def test_comparison_rejects_bad_op():
    with pytest.raises(ValueError):
        Comparison("~", x, y)


def test_bool_and_distributes():
    cond = BoolAnd((Comparison("!=", x, 0), Comparison(">", y, 0)))
    dnf = cond.dnf()
    assert len(dnf) == 2
    for disjunct in dnf:
        assert disjunct.entails_atom(atom_gt(y, 0))


def test_bool_not_double_negation():
    cond = BoolNot(BoolNot(Comparison("<", x, y)))
    assert cond.dnf() == Comparison("<", x, y).dnf()


def test_bool_const_and_nondet():
    assert BoolConst(True).dnf() == [conj()]
    assert BoolConst(True).negated_dnf() == []
    assert BoolConst(False).dnf() == []
    assert Nondet().dnf() == [conj()]
    assert Nondet().negated_dnf() == [conj()]


def test_unsat_disjuncts_dropped():
    cond = BoolAnd((Comparison("<", x, 0), Comparison(">", x, 0)))
    assert cond.dnf() == []


# -- CFG ---------------------------------------------------------------------------------

def test_cfg_shape_for_simple_loop():
    cfg = build_cfg(parse_program("""
program p(x):
    while x > 0:
        x := x - 1
"""))
    assert cfg.entry == 0
    assert len(cfg.alphabet()) == 3  # guard, negated guard, decrement
    guards = [e for e in cfg.edges if isinstance(e.statement, Assume)]
    assert len(guards) == 2
    # exit has no outgoing edges
    assert cfg.out_edges(cfg.exit) == []


def test_cfg_statement_interning():
    cfg = build_cfg(parse_program("""
program p(x):
    while x > 0:
        x := x - 1
    while x > 0:
        x := x - 1
"""))
    # Both loops use the same guard and body: the alphabet does not grow.
    assert len(cfg.alphabet()) == 3


def test_cfg_disjunctive_guard_splits_edges():
    cfg = build_cfg(parse_program("""
program p(x, y):
    while x > 0 or y > 0:
        x := x - 1
"""))
    guards = [e for e in cfg.edges if e.source == 0 and e.target not in (0,)]
    # two entry edges (one per disjunct) plus one exit edge (conjunction)
    labels = sorted(str(e.statement) for e in cfg.edges if isinstance(e.statement, Assume))
    assert any("#0" in label for label in labels)


def test_cfg_nondet_branch_duplicates_symbol():
    cfg = build_cfg(parse_program("""
program p(x):
    while x > 0:
        if *:
            x := x - 1
        else:
            x := x - 2
"""))
    star_edges = [e for e in cfg.edges
                  if isinstance(e.statement, Assume) and e.statement.cond.is_true()]
    # '*' true and false branches carry assume-true statements
    assert len(star_edges) >= 2


def test_cfg_to_gba_all_states_accepting():
    cfg = build_cfg(parse_program("""
program p(x):
    while x > 0:
        x := x - 1
"""))
    gba = cfg.to_gba()
    assert gba.acceptance_count == 1
    assert gba.acc_sets[0] == gba.states


def test_cfg_empty_while_body_self_loop():
    cfg = build_cfg(parse_program("""
program p(x):
    while x > 0:
        skip
"""))
    gba = cfg.to_gba()
    assert gba.initial_states() <= gba.states


def test_cfg_empty_program():
    cfg = build_cfg(parse_program("program p(x):"))
    assert cfg.entry == cfg.exit
    assert cfg.edges == ()
