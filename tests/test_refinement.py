"""End-to-end tests of the refinement engine and public API."""

import pytest

from repro import (AnalysisConfig, StageSequence, Verdict, prove_termination,
                   prove_termination_source)
from repro.core.module import validate_module
from repro.core.stats import StatsCollector
from repro.program.parser import parse_program

SORT = """
program sort(i, j):
    while i > 0:
        j := 1
        while j < i:
            j := j + 1
        i := i - 1
"""

COUNTDOWN = """
program count_down(x):
    while x > 0:
        x := x - 1
"""

DIVERGES = """
program count_up(x):
    while x > 0:
        x := x + 1
"""


def test_countdown_terminates():
    result = prove_termination_source(COUNTDOWN)
    assert result.verdict is Verdict.TERMINATING
    assert bool(result)
    assert result.modules
    assert result.stats.iterations >= 1


def test_sort_terminates_like_the_paper():
    result = prove_termination_source(SORT, AnalysisConfig(timeout=30.0))
    assert result.verdict is Verdict.TERMINATING
    # every produced module is a valid certified module (Definition 3.1)
    for module in result.modules:
        assert validate_module(module) == []


def test_nontermination_detected():
    result = prove_termination_source(DIVERGES)
    assert result.verdict is Verdict.NONTERMINATING
    assert not bool(result)
    assert result.witness is not None
    assert result.witness_word is not None


def test_fractional_rank_cycle_not_claimed_terminating():
    # Regression: y cycles through -1 2 5 -5 -2 1 4 -4, so the program
    # diverges from every initial state.  Rankings like 1/6*y + 5/6 give
    # the certificates fractional oldrnk values; integral tightening of
    # oldrnk atoms used to declare those certificates unsat, creating
    # bogus accepting states and a TERMINATING verdict.
    result = prove_termination_source("""
program cycler(x, y):
    while x >= x:
        x := 3
        if y >= x:
            y := y + 3
            y := x - y
        else:
            x := 3
            y := y + 3
""", AnalysisConfig(timeout=20.0, max_refinements=12,
                    difference_state_limit=20_000))
    assert result.verdict is not Verdict.TERMINATING
    for module in result.modules:
        assert validate_module(module) == []


def test_loop_free_program_is_trivially_terminating():
    result = prove_termination_source("""
program straight(x):
    x := x + 1
    x := x - 2
""")
    assert result.verdict is Verdict.TERMINATING
    assert result.stats.iterations == 0


def test_unknown_on_multiphase():
    result = prove_termination_source("""
program multiphase(x, y):
    while x > 0:
        x := x + y
        y := y - 1
""")
    assert result.verdict is Verdict.UNKNOWN
    assert result.reason and "not provable" in result.reason


def test_refinement_budget():
    result = prove_termination_source(SORT, AnalysisConfig(max_refinements=1))
    assert result.verdict is Verdict.UNKNOWN
    assert result.reason == "refinement budget exhausted"


def test_timeout_budget():
    result = prove_termination_source(SORT, AnalysisConfig(timeout=0.0))
    assert result.verdict is Verdict.UNKNOWN
    assert result.reason == "timeout"


def test_deadline_checked_inside_lasso_search():
    """An already-expired deadline must abort the SCC sweep itself, not
    wait for the next round boundary."""
    import time

    from repro.automata.emptiness import (ExplorationTimeout,
                                          find_accepting_lasso)
    from repro.program.cfg import build_cfg

    gba = build_cfg(parse_program(SORT)).to_gba()
    with pytest.raises(ExplorationTimeout):
        find_accepting_lasso(gba, deadline=time.perf_counter() - 1.0)
    # and without a deadline the same search still succeeds
    assert find_accepting_lasso(gba) is not None


def test_portfolio_budget_flows_to_later_configs(monkeypatch):
    """Unused budget of an early-finishing config goes to the rest,
    instead of every config being pinned to timeout/len(configs)."""
    import repro.core.api as api
    from repro.core.stats import AnalysisStats

    from repro.core.refinement import TerminationResult

    budgets = []

    def fake_prove(program, config=None, collector=None, checkpoint=None,
                   library=None):
        budgets.append(config.timeout)
        return TerminationResult(Verdict.UNKNOWN, stats=AnalysisStats())

    monkeypatch.setattr(api, "prove_termination", fake_prove)
    program = parse_program(COUNTDOWN)
    api.prove_termination_portfolio(
        program, configs=(AnalysisConfig(), AnalysisConfig()), timeout=10.0)
    assert budgets[0] == pytest.approx(5.0, abs=0.5)
    # the first attempt returned almost instantly; nearly the whole
    # 10s budget must flow to the second config (was: a fixed 5s)
    assert budgets[1] > 9.0


def test_all_stage_sequences_solve_countdown():
    for name in ("i", "ii", "iii"):
        config = AnalysisConfig.multi_stage(name, timeout=30.0)
        result = prove_termination_source(COUNTDOWN, config)
        assert result.verdict is Verdict.TERMINATING, name


def test_single_stage_solves_countdown():
    result = prove_termination_source(
        COUNTDOWN, AnalysisConfig.single_stage(timeout=30.0))
    assert result.verdict is Verdict.TERMINATING
    assert all(m.stage == "nondet" for m in result.modules)


def test_optimization_toggles_do_not_change_verdicts():
    for lazy in (True, False):
        for subsumption in (True, False):
            config = AnalysisConfig(lazy_complement=lazy,
                                    subsumption=subsumption, timeout=30.0)
            result = prove_termination_source(SORT, config)
            assert result.verdict is Verdict.TERMINATING, (lazy, subsumption)


def test_collector_captures_sdbas():
    collector = StatsCollector(capture_sdbas=True)
    program = parse_program(SORT)
    result = prove_termination(program, AnalysisConfig(timeout=30.0), collector)
    assert result.verdict is Verdict.TERMINATING
    assert collector.sdbas, "sort produces semideterministic modules"
    from repro.automata.classify import is_semideterministic
    for auto in collector.sdbas:
        assert is_semideterministic(auto)


def test_stats_summary_shape():
    result = prove_termination_source(COUNTDOWN)
    summary = result.stats.summary()
    assert "count_down" in summary
    assert "rounds" in summary
    assert result.stats.config.startswith("multi(i)")


def test_config_describe():
    assert AnalysisConfig().describe() == "multi(i)+ncsb-lazy+subsumption"
    assert AnalysisConfig.single_stage(
        lazy_complement=False, subsumption=False).describe() == "single+ncsb-original"
    custom = AnalysisConfig().with_(subsumption=False)
    assert "subsumption" not in custom.describe()


def test_verdicts_are_stable_across_repeat_runs():
    first = prove_termination_source(SORT, AnalysisConfig(timeout=30.0))
    second = prove_termination_source(SORT, AnalysisConfig(timeout=30.0))
    assert first.verdict == second.verdict
    assert [m.stage for m in first.modules] == [m.stage for m in second.modules]


def test_interpolant_modules_solve_phase_programs():
    result = prove_termination_source("""
program two_phase(x, p):
    while x > 0:
        if p == 0:
            x := x + 1
            p := 1
        else:
            x := x - 2
""", AnalysisConfig(timeout=30.0, interpolant_modules=True))
    assert result.verdict is Verdict.TERMINATING
    for module in result.modules:
        assert validate_module(module) == []


def test_portfolio_dominates_first_member():
    from repro import prove_termination_portfolio
    program = parse_program("""
program warmup(x, w):
    while x > 0:
        if w > 0:
            w := w - 1
        else:
            x := x - 1
""")
    result = prove_termination_portfolio(program, timeout=40.0)
    assert result.verdict is Verdict.TERMINATING


def test_portfolio_requires_configs():
    from repro import prove_termination_portfolio
    with pytest.raises(ValueError):
        prove_termination_portfolio(parse_program("program p(x):"), configs=())


def test_via_semidet_route_sound():
    result = prove_termination_source(COUNTDOWN,
                                      AnalysisConfig.single_stage(
                                          timeout=20.0, via_semidet=True))
    assert result.verdict is Verdict.TERMINATING


# -- degradation-ladder restart for off-ladder stages ------------------------------

def test_ladder_tail_walks_strictly_down():
    from repro.core.refinement import DEGRADATION_LADDER, ladder_tail
    from repro.core.stages import Stage
    assert ladder_tail("nondet") == DEGRADATION_LADDER[1:]
    assert ladder_tail("semi") == (Stage.LASSO, Stage.DETERMINISTIC,
                                   Stage.FINITE)
    assert ladder_tail("finite") == ()


def test_ladder_tail_restarts_for_off_ladder_stages():
    # "interp" (and any future off-ladder label) must retry the whole
    # ladder, not silently degrade straight to UNKNOWN.
    from repro.core.refinement import DEGRADATION_LADDER, ladder_tail
    from repro.core.stages import INTERPOLANT_STAGE
    assert ladder_tail(INTERPOLANT_STAGE) == DEGRADATION_LADDER
    assert ladder_tail("no-such-stage") == DEGRADATION_LADDER


def test_interpolant_modules_are_labeled_interp():
    from repro.core.stages import INTERPOLANT_STAGE
    source = """
program two_phase(x, p):
    while x > 0:
        if p == 0:
            x := x + 1
            p := 1
        else:
            x := x - 2
"""
    result = prove_termination_source(
        source, AnalysisConfig(interpolant_modules=True, timeout=60.0))
    assert result.verdict is Verdict.TERMINATING
    stages = [m.stage for m in result.modules]
    assert INTERPOLANT_STAGE in stages
    assert result.stats.modules_by_stage[INTERPOLANT_STAGE] >= 1


def test_companion_subtraction_recorded_in_round_stats():
    source = """
program two_phase(x, p):
    while x > 0:
        if p == 0:
            x := x + 1
            p := 1
        else:
            x := x - 2
"""
    result = prove_termination_source(
        source, AnalysisConfig(interpolant_modules=True, timeout=60.0))
    assert result.verdict is Verdict.TERMINATING
    companion_rounds = [r for r in result.stats.rounds
                        if r.companion_stage is not None]
    assert companion_rounds, "interp rounds must record their companion"
    for round_stats in companion_rounds:
        assert round_stats.companion_stage == "finite"
        # the companion subtraction's exploration is accumulated, so the
        # round can never report zero work after two subtractions
        assert round_stats.explored_states > 0
        assert round_stats.difference_states >= 0
