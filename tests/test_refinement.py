"""End-to-end tests of the refinement engine and public API."""

import pytest

from repro import (AnalysisConfig, StageSequence, Verdict, prove_termination,
                   prove_termination_source)
from repro.core.module import validate_module
from repro.core.stats import StatsCollector
from repro.program.parser import parse_program

SORT = """
program sort(i, j):
    while i > 0:
        j := 1
        while j < i:
            j := j + 1
        i := i - 1
"""

COUNTDOWN = """
program count_down(x):
    while x > 0:
        x := x - 1
"""

DIVERGES = """
program count_up(x):
    while x > 0:
        x := x + 1
"""


def test_countdown_terminates():
    result = prove_termination_source(COUNTDOWN)
    assert result.verdict is Verdict.TERMINATING
    assert bool(result)
    assert result.modules
    assert result.stats.iterations >= 1


def test_sort_terminates_like_the_paper():
    result = prove_termination_source(SORT, AnalysisConfig(timeout=30.0))
    assert result.verdict is Verdict.TERMINATING
    # every produced module is a valid certified module (Definition 3.1)
    for module in result.modules:
        assert validate_module(module) == []


def test_nontermination_detected():
    result = prove_termination_source(DIVERGES)
    assert result.verdict is Verdict.NONTERMINATING
    assert not bool(result)
    assert result.witness is not None
    assert result.witness_word is not None


def test_fractional_rank_cycle_not_claimed_terminating():
    # Regression: y cycles through -1 2 5 -5 -2 1 4 -4, so the program
    # diverges from every initial state.  Rankings like 1/6*y + 5/6 give
    # the certificates fractional oldrnk values; integral tightening of
    # oldrnk atoms used to declare those certificates unsat, creating
    # bogus accepting states and a TERMINATING verdict.
    result = prove_termination_source("""
program cycler(x, y):
    while x >= x:
        x := 3
        if y >= x:
            y := y + 3
            y := x - y
        else:
            x := 3
            y := y + 3
""", AnalysisConfig(timeout=20.0, max_refinements=12,
                    difference_state_limit=20_000))
    assert result.verdict is not Verdict.TERMINATING
    for module in result.modules:
        assert validate_module(module) == []


def test_loop_free_program_is_trivially_terminating():
    result = prove_termination_source("""
program straight(x):
    x := x + 1
    x := x - 2
""")
    assert result.verdict is Verdict.TERMINATING
    assert result.stats.iterations == 0


def test_unknown_on_multiphase():
    result = prove_termination_source("""
program multiphase(x, y):
    while x > 0:
        x := x + y
        y := y - 1
""")
    assert result.verdict is Verdict.UNKNOWN
    assert result.reason and "not provable" in result.reason


def test_refinement_budget():
    result = prove_termination_source(SORT, AnalysisConfig(max_refinements=1))
    assert result.verdict is Verdict.UNKNOWN
    assert result.reason == "refinement budget exhausted"


def test_timeout_budget():
    result = prove_termination_source(SORT, AnalysisConfig(timeout=0.0))
    assert result.verdict is Verdict.UNKNOWN
    assert result.reason == "timeout"


def test_deadline_checked_inside_lasso_search():
    """An already-expired deadline must abort the SCC sweep itself, not
    wait for the next round boundary."""
    import time

    from repro.automata.emptiness import (ExplorationTimeout,
                                          find_accepting_lasso)
    from repro.program.cfg import build_cfg

    gba = build_cfg(parse_program(SORT)).to_gba()
    with pytest.raises(ExplorationTimeout):
        find_accepting_lasso(gba, deadline=time.perf_counter() - 1.0)
    # and without a deadline the same search still succeeds
    assert find_accepting_lasso(gba) is not None


def test_portfolio_budget_flows_to_later_configs(monkeypatch):
    """Unused budget of an early-finishing config goes to the rest,
    instead of every config being pinned to timeout/len(configs)."""
    import repro.core.api as api
    from repro.core.stats import AnalysisStats

    from repro.core.refinement import TerminationResult

    budgets = []

    def fake_prove(program, config=None, collector=None):
        budgets.append(config.timeout)
        return TerminationResult(Verdict.UNKNOWN, stats=AnalysisStats())

    monkeypatch.setattr(api, "prove_termination", fake_prove)
    program = parse_program(COUNTDOWN)
    api.prove_termination_portfolio(
        program, configs=(AnalysisConfig(), AnalysisConfig()), timeout=10.0)
    assert budgets[0] == pytest.approx(5.0, abs=0.5)
    # the first attempt returned almost instantly; nearly the whole
    # 10s budget must flow to the second config (was: a fixed 5s)
    assert budgets[1] > 9.0


def test_all_stage_sequences_solve_countdown():
    for name in ("i", "ii", "iii"):
        config = AnalysisConfig.multi_stage(name, timeout=30.0)
        result = prove_termination_source(COUNTDOWN, config)
        assert result.verdict is Verdict.TERMINATING, name


def test_single_stage_solves_countdown():
    result = prove_termination_source(
        COUNTDOWN, AnalysisConfig.single_stage(timeout=30.0))
    assert result.verdict is Verdict.TERMINATING
    assert all(m.stage == "nondet" for m in result.modules)


def test_optimization_toggles_do_not_change_verdicts():
    for lazy in (True, False):
        for subsumption in (True, False):
            config = AnalysisConfig(lazy_complement=lazy,
                                    subsumption=subsumption, timeout=30.0)
            result = prove_termination_source(SORT, config)
            assert result.verdict is Verdict.TERMINATING, (lazy, subsumption)


def test_collector_captures_sdbas():
    collector = StatsCollector(capture_sdbas=True)
    program = parse_program(SORT)
    result = prove_termination(program, AnalysisConfig(timeout=30.0), collector)
    assert result.verdict is Verdict.TERMINATING
    assert collector.sdbas, "sort produces semideterministic modules"
    from repro.automata.classify import is_semideterministic
    for auto in collector.sdbas:
        assert is_semideterministic(auto)


def test_stats_summary_shape():
    result = prove_termination_source(COUNTDOWN)
    summary = result.stats.summary()
    assert "count_down" in summary
    assert "rounds" in summary
    assert result.stats.config.startswith("multi(i)")


def test_config_describe():
    assert AnalysisConfig().describe() == "multi(i)+ncsb-lazy+subsumption"
    assert AnalysisConfig.single_stage(
        lazy_complement=False, subsumption=False).describe() == "single+ncsb-original"
    custom = AnalysisConfig().with_(subsumption=False)
    assert "subsumption" not in custom.describe()


def test_verdicts_are_stable_across_repeat_runs():
    first = prove_termination_source(SORT, AnalysisConfig(timeout=30.0))
    second = prove_termination_source(SORT, AnalysisConfig(timeout=30.0))
    assert first.verdict == second.verdict
    assert [m.stage for m in first.modules] == [m.stage for m in second.modules]


def test_interpolant_modules_solve_phase_programs():
    result = prove_termination_source("""
program two_phase(x, p):
    while x > 0:
        if p == 0:
            x := x + 1
            p := 1
        else:
            x := x - 2
""", AnalysisConfig(timeout=30.0, interpolant_modules=True))
    assert result.verdict is Verdict.TERMINATING
    for module in result.modules:
        assert validate_module(module) == []


def test_portfolio_dominates_first_member():
    from repro import prove_termination_portfolio
    program = parse_program("""
program warmup(x, w):
    while x > 0:
        if w > 0:
            w := w - 1
        else:
            x := x - 1
""")
    result = prove_termination_portfolio(program, timeout=40.0)
    assert result.verdict is Verdict.TERMINATING


def test_portfolio_requires_configs():
    from repro import prove_termination_portfolio
    with pytest.raises(ValueError):
        prove_termination_portfolio(parse_program("program p(x):"), configs=())


def test_via_semidet_route_sound():
    result = prove_termination_source(COUNTDOWN,
                                      AnalysisConfig.single_stage(
                                          timeout=20.0, via_semidet=True))
    assert result.verdict is Verdict.TERMINATING
