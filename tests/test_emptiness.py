"""Tests for Algorithm 1 (remove_useless) and lasso extraction.

The modified Gaiser--Schwoon algorithm is cross-checked against a naive
Tarjan-based reference on random GBAs (hypothesis).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.emptiness import (EmptyOracle, ExplorationLimit,
                                      find_accepting_lasso, is_empty,
                                      is_empty_naive, remove_useless)
from repro.automata.gba import GBA, ba
from repro.automata.words import UPWord, accepts

SIGMA = ("a", "b")


def test_empty_automaton():
    auto = ba(set(SIGMA), {("q", "a"): {"r"}}, ["q"], [])  # BA, empty F
    useful, stats = remove_useless(auto)
    assert not useful.initial_states()
    assert is_empty(auto)
    assert stats.useless_states == 2


def test_nonempty_keeps_only_useful():
    auto = ba(set(SIGMA),
              {("q", "a"): {"acc", "dead"},
               ("acc", "a"): {"acc"},
               ("dead", "b"): {"dead2"}},
              ["q"], ["acc"])
    useful, stats = remove_useless(auto)
    assert useful.states == {"q", "acc"}
    assert stats.useful_states == 2
    assert stats.useless_states == 2
    assert not is_empty(auto)


def test_language_preserved():
    auto = ba(set(SIGMA),
              {("q", "a"): {"acc"}, ("q", "b"): {"dead"},
               ("acc", "a"): {"acc"}, ("acc", "b"): {"dead"},
               ("dead", "a"): {"dead"}},
              ["q"], ["acc"])
    useful, _ = remove_useless(auto)
    for word in [UPWord((), ("a",)), UPWord((), ("b",)),
                 UPWord(("a", "a"), ("a",)), UPWord(("b",), ("a",))]:
        assert accepts(useful, word) == accepts(auto, word), str(word)


def test_generalized_conditions_must_all_recur():
    # SCC covering only one of two conditions is useless.
    auto = GBA(set(SIGMA),
               {("q", "a"): {"q"}, ("q", "b"): {"r"},
                ("r", "a"): {"r"}},
               ["q"], [["q"], ["r"]])
    assert is_empty(auto)
    # joined SCC covering both is useful
    auto2 = GBA(set(SIGMA),
                {("q", "a"): {"r"}, ("r", "b"): {"q"}},
                ["q"], [["q"], ["r"]])
    assert not is_empty(auto2)


def test_state_limit():
    auto = ba(set(SIGMA),
              {(i, "a"): {i + 1} for i in range(100)} | {(100, "a"): {100}},
              [0], [100])
    with pytest.raises(ExplorationLimit):
        remove_useless(auto, state_limit=10)


def test_oracle_prepopulated():
    auto = ba(set(SIGMA),
              {("q", "a"): {"acc"}, ("acc", "a"): {"acc"}},
              ["q"], ["acc"])
    oracle = EmptyOracle()
    oracle.add("acc")  # pretend acc is known-empty
    useful, stats = remove_useless(auto, oracle=oracle)
    # the oracle verdict is trusted: acc skipped, q has no other path
    assert not useful.initial_states()
    assert stats.subsumption_hits >= 1


def test_on_transition_callback():
    auto = ba(set(SIGMA), {("q", "a"): {"q"}}, ["q"], ["q"])
    seen = []
    remove_useless(auto, on_transition=lambda s, a, t: seen.append((s, a, t)))
    assert ("q", "a", "q") in seen


def test_deep_chain_no_recursion_error():
    n = 50_000
    transitions = {(i, "a"): {i + 1} for i in range(n)}
    transitions[(n, "a")] = {n}
    auto = ba({"a"}, transitions, [0], [n])
    useful, _ = remove_useless(auto)
    assert len(useful.states) == n + 1


# -- lasso extraction ---------------------------------------------------------------

def test_find_accepting_lasso_none_when_empty():
    auto = ba(set(SIGMA), {("q", "a"): {"q"}}, ["q"], [])
    assert find_accepting_lasso(auto) is None


def test_find_accepting_lasso_word_is_accepted():
    auto = ba(set(SIGMA),
              {("q", "b"): {"q"}, ("q", "a"): {"acc"},
               ("acc", "a"): {"acc"}, ("acc", "b"): {"q"}},
              ["q"], ["acc"])
    word = find_accepting_lasso(auto)
    assert word is not None
    assert accepts(auto, word)


def test_find_accepting_lasso_generalized():
    auto = GBA(set(SIGMA),
               {("q", "a"): {"r"}, ("r", "b"): {"q"}},
               ["q"], [["q"], ["r"]])
    word = find_accepting_lasso(auto)
    assert word is not None
    assert accepts(auto, word)
    assert len(word.period) >= 2  # must visit both conditions


def test_find_accepting_lasso_self_loop():
    auto = ba(set(SIGMA), {("q", "a"): {"q"}}, ["q"], ["q"])
    word = find_accepting_lasso(auto)
    assert word == UPWord((), ("a",))


# -- randomized cross-check -----------------------------------------------------------

@st.composite
def random_gbas(draw):
    n = draw(st.integers(1, 6))
    k = draw(st.integers(0, 2))
    states = list(range(n))
    transitions = {}
    for q in states:
        for s in SIGMA:
            targets = {t for t in states if draw(st.booleans())}
            if targets:
                transitions[(q, s)] = targets
    acc_sets = [[q for q in states if draw(st.booleans())] for _ in range(k)]
    return GBA(set(SIGMA), transitions, [0], acc_sets, states=states)


@settings(max_examples=120, deadline=None)
@given(random_gbas())
def test_algorithm1_agrees_with_naive(auto):
    assert is_empty(auto) == is_empty_naive(auto)


@settings(max_examples=120, deadline=None)
@given(random_gbas())
def test_useful_states_have_nonempty_language(auto):
    useful, _ = remove_useless(auto)
    for q in useful.states:
        # a useful state must have a nonempty language in the original
        assert not is_empty_naive(auto.with_initial([q])), f"state {q}"


@settings(max_examples=80, deadline=None)
@given(random_gbas())
def test_useless_states_have_empty_language(auto):
    useful, _ = remove_useless(auto)
    reachable = set()
    stack = list(auto.initial_states())
    while stack:
        q = stack.pop()
        if q in reachable:
            continue
        reachable.add(q)
        stack.extend(auto.post(q))
    for q in reachable - useful.states:
        assert is_empty_naive(auto.with_initial([q])), f"state {q}"


@settings(max_examples=80, deadline=None)
@given(random_gbas())
def test_extracted_lasso_is_accepted(auto):
    word = find_accepting_lasso(auto)
    if word is None:
        assert is_empty_naive(auto)
    else:
        assert accepts(auto, word)


# -- cooperative deadline on edge-heavy frontiers ----------------------------------

def fan_out_gba(symbols: int) -> GBA:
    """One pushed state, ``symbols`` explored self-loop edges."""
    alphabet = {f"s{i}" for i in range(symbols)}
    transitions = {("root", s): {"root"} for s in alphabet}
    return ba(alphabet, transitions, ["root"], ["root"], states={"root"})


def test_deadline_polled_on_explored_edges():
    import time

    from repro.automata.emptiness import ExplorationTimeout

    # With a single state the pushed-state poll never fires; the edge
    # poll must catch the expired deadline anyway.
    auto = fan_out_gba(2000)
    with pytest.raises(ExplorationTimeout):
        remove_useless(auto, deadline=time.perf_counter() - 1.0)


def test_fan_out_gba_completes_without_deadline():
    auto = fan_out_gba(2000)
    useful, stats = remove_useless(auto)
    assert useful.states
    assert stats.explored_edges == 2000


# -- lasso-search invariants survive `python -O` --------------------------------


class _InconsistentGBA(GBA):
    """A deliberately broken ImplicitGBA: ``post`` sees the real edges
    (so the SCC sweep finds the accepting SCC) but ``edges_from``
    claims there are none (so path extraction cannot reach it)."""

    def edges_from(self, state):
        return ()


def test_inconsistent_views_raise_search_invariant_error():
    from repro.automata.emptiness import SearchInvariantError
    auto = _InconsistentGBA(set(SIGMA),
                            {("q0", "a"): {"q1"}, ("q1", "a"): {"q1"}},
                            ["q0"], [["q1"]])
    # Formerly a bare `assert`, which `python -O` strips -- the None
    # entry state would then flow into period extension and corrupt
    # the witness word instead of failing loudly.
    with pytest.raises(SearchInvariantError) as err:
        find_accepting_lasso(auto)
    assert "unreachable" in str(err.value)


def test_inconsistent_views_raise_on_cycle_closing():
    from repro.automata.emptiness import SearchInvariantError
    # The initial state *is* the accepting SCC, so the stem is empty
    # and the failure moves to the period-closing search.
    auto = _InconsistentGBA(set(SIGMA), {("q0", "a"): {"q0"}},
                            ["q0"], [["q0"]])
    with pytest.raises(SearchInvariantError) as err:
        find_accepting_lasso(auto)
    assert "close the period" in str(err.value)


def test_search_invariant_error_is_not_a_verdict_path():
    from repro.automata.emptiness import SearchInvariantError
    from repro.core.budget import ReproError
    # An internal bug must surface as an error row, never be caught by
    # the budget/degradation machinery as if it were resource pressure.
    assert not issubclass(SearchInvariantError, ReproError)
    assert issubclass(SearchInvariantError, RuntimeError)
