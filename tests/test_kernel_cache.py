"""Tests for the successor-index / memoization layer of the kernel.

Covers the CachedImplicitGBA wrapper, the lazily built GBA edge index,
the streaming of Algorithm 1's edges (bounded auxiliary memory), the
bitset-encoded subsumption antichain, and a corpus-level cross-check of
``difference`` under every (subsumption, cache) combination against the
naive materialized-product emptiness reference.
"""

from __future__ import annotations

import random

import pytest

from repro.automata.complement.dispatch import implicit_complement
from repro.automata.complement.ncsb import (MacroEncoder, MacroState,
                                            subsumes, subsumes_b)
from repro.automata.difference import SubsumptionOracle, difference
from repro.automata.emptiness import (find_accepting_lasso, is_empty_naive,
                                      remove_useless)
from repro.automata.gba import CachedImplicitGBA, GBA, ba, materialize
from repro.automata.ops import ProductGBA
from repro.automata.words import accepts
from repro.benchgen.sdba_corpus import random_sdba


def random_minuend(seed: int, alphabet, n: int = 4) -> GBA:
    """A random all-accepting BA over the given alphabet."""
    rng = random.Random(seed)
    sigma = sorted(alphabet)
    states = list(range(n))
    transitions = {}
    for q in states:
        for s in sigma:
            targets = {t for t in states if rng.random() < 0.5}
            if targets:
                transitions[(q, s)] = targets
    return ba(alphabet, transitions, [0], states, states=states)


# -- CachedImplicitGBA -----------------------------------------------------------


def test_cached_wrapper_is_equivalent_and_counts_hits():
    sdba = random_sdba(7)
    comp, _ = implicit_complement(sdba)
    cached = CachedImplicitGBA(comp)
    assert cached.alphabet == comp.alphabet
    assert cached.acceptance_count == comp.acceptance_count
    assert tuple(cached.initial_states()) == tuple(comp.initial_states())
    state = next(iter(comp.initial_states()))
    symbol = sorted(cached.alphabet, key=str)[0]
    first = cached.successors(state, symbol)
    assert cached.cache_misses == 1 and cached.cache_hits == 0
    again = cached.successors(state, symbol)
    assert again is first  # served from the cache, not recomputed
    assert cached.cache_hits == 1
    assert set(first) == set(comp.successors(state, symbol))
    assert cached.accepting_sets_of(state) == frozenset(
        comp.accepting_sets_of(state))


def test_cached_wrapper_edge_index_is_sorted_and_complete():
    sdba = random_sdba(11)
    comp, _ = implicit_complement(sdba)
    cached = CachedImplicitGBA(comp)
    state = next(iter(cached.initial_states()))
    edges = cached.edges_from(state)
    assert edges is cached.edges_from(state)  # interned
    symbols = [str(symbol) for symbol, _ in edges]
    assert symbols == sorted(symbols)
    expected = {(symbol, target)
                for symbol in comp.alphabet
                for target in comp.successors(state, symbol)}
    assert set(edges) == expected


def test_gba_edge_index_matches_transitions():
    auto = random_minuend(3, frozenset(("a", "b")))
    for state in auto.states:
        edges = auto.edges_from(state)
        assert edges is auto.edges_from(state)  # built once, interned
        expected = {(symbol, target)
                    for symbol in auto.alphabet
                    for target in auto.successors(state, symbol)}
        assert set(edges) == expected
        symbols = [str(symbol) for symbol, _ in edges]
        assert symbols == sorted(symbols)
        assert auto.post(state) == {t for _, t in edges}


def test_gba_transitions_view_is_read_only():
    auto = random_minuend(4, frozenset(("a", "b")))
    with pytest.raises(TypeError):
        auto.transitions[("x", "a")] = frozenset({"y"})


# -- Algorithm 1 edge streaming ----------------------------------------------------


def test_remove_useless_classifies_every_explored_state():
    # useful + useless must sum to explored, independent of the oracle
    # representation (the antichain keeps only maximal entries).
    minuend = random_minuend(5, frozenset(f"s{i}" for i in range(3)))
    sdba = random_sdba(5)
    result = difference(minuend, sdba, subsumption=True)
    stats = result.stats
    assert stats.useful_states + stats.useless_states == stats.explored_states
    no_sub = difference(minuend, sdba, subsumption=False)
    assert (no_sub.stats.useful_states + no_sub.stats.useless_states
            == no_sub.stats.explored_states)


def test_peak_pending_edges_does_not_scale_with_useless_edges():
    # K useless chains of length M hang off the root next to one useful
    # loop.  The old edges_seen list grew to ~K*M edges; the streaming
    # index drops each chain as soon as it is classified, so the peak
    # stays proportional to a single chain plus the root's fanout.
    k_chains, m_len = 40, 50
    transitions = {("root", "a"): {"loop"} | {f"c{i}_0" for i in range(k_chains)},
                   ("loop", "a"): {"loop"}}
    for i in range(k_chains):
        for j in range(m_len - 1):
            transitions[(f"c{i}_{j}", "a")] = {f"c{i}_{j+1}"}
    auto = ba({"a"}, transitions, ["root"], ["loop"])
    useful, stats = remove_useless(auto)
    assert useful.states == {"root", "loop"}
    assert stats.explored_edges >= k_chains * (m_len - 1)
    # peak auxiliary memory must not scale with the useless bulk
    assert stats.peak_pending_edges <= m_len + k_chains + 4
    assert stats.peak_pending_edges < stats.explored_edges / 10
    assert stats.retained_edges == 2  # root->loop, loop->loop


def test_retained_edges_match_result_automaton():
    minuend = random_minuend(9, frozenset(f"s{i}" for i in range(3)))
    sdba = random_sdba(9)
    result = difference(minuend, sdba)
    assert result.stats.retained_edges == result.automaton.num_transitions()


# -- bitset subsumption oracle ----------------------------------------------------


def _random_macro(rng: random.Random, universe) -> MacroState:
    def pick():
        return frozenset(q for q in universe if rng.random() < 0.4)
    n, c, s = pick(), pick(), pick()
    return MacroState(n, c, s, frozenset(b for b in c if rng.random() < 0.5))


@pytest.mark.parametrize("relation", [subsumes, subsumes_b])
def test_bitset_oracle_agrees_with_generic_path(relation):
    universe = [f"q{i}" for i in range(8)]
    rng = random.Random(2018)
    fast = SubsumptionOracle(relation)
    # wrapping the relation in a lambda disables the bitset fast path
    slow = SubsumptionOracle(lambda a, b: relation(a, b))
    macros = [_random_macro(rng, universe) for _ in range(120)]
    keys = ["qa", "qb", None]
    for i, macro in enumerate(macros):
        key = keys[i % len(keys)]
        state = macro if key is None else (key, macro)
        if i % 3 == 0:
            fast.add(state)
            slow.add(state)
        assert fast.contains(state) == slow.contains(state), str(macro)
        assert len(fast) == len(slow)


def test_macro_encoder_interns_and_encodes_supersets():
    enc = MacroEncoder()
    small = MacroState(frozenset({"a", "b"}), frozenset({"c"}),
                       frozenset(), frozenset())
    big = MacroState(frozenset({"a"}), frozenset({"c"}),
                     frozenset(), frozenset())
    e_small, e_big = enc.encode(small), enc.encode(big)
    assert enc.encode(small) is e_small  # interned
    # small.n >= big.n  <=>  small bits cover big bits
    assert e_small[0] & e_big[0] == e_big[0]
    assert e_small[4] == 2 and e_big[4] == 1  # component sizes carried along


def test_oracle_prefilter_counts_skips():
    oracle = SubsumptionOracle(subsumes)
    big = MacroState(frozenset({"a", "b", "c"}), frozenset(), frozenset(),
                     frozenset())
    tiny = MacroState(frozenset({"a"}), frozenset(), frozenset(), frozenset())
    oracle.add(("qa", big))
    assert not oracle.contains(("qa", tiny))  # |tiny.n| < |big.n|: prefiltered
    assert oracle.prefilter_skips >= 1


# -- corpus-level cross-check (the satellite property test) -----------------------


@pytest.mark.parametrize("seed", range(8))
def test_difference_configurations_agree_with_naive_reference(seed):
    """difference(subsumption=T/F, cache=T/F) vs is_empty_naive on the
    materialized product, plus accepted-word agreement, over the random
    SDBA corpus generators."""
    subtrahend = random_sdba(seed, n_nondet=3, n_det=4)
    minuend = random_minuend(seed + 1000, subtrahend.alphabet)

    results = {
        (subsumption, cache): difference(minuend, subtrahend,
                                         subsumption=subsumption, cache=cache)
        for subsumption in (True, False)
        for cache in (True, False)
    }

    # naive reference: materialize the whole product, Tarjan-based check
    comp, _ = implicit_complement(subtrahend, minuend.alphabet)
    product = materialize(ProductGBA(minuend, comp))
    naive_empty = is_empty_naive(product)

    for config, result in results.items():
        assert result.is_empty == naive_empty, config
        if not result.is_empty:
            witness = find_accepting_lasso(result.automaton)
            assert witness is not None, config
            assert accepts(minuend, witness), config
            assert not accepts(subtrahend, witness), config

    # cache on/off is pure memoization: identical automata and counters
    for subsumption in (True, False):
        on, off = results[(subsumption, True)], results[(subsumption, False)]
        assert on.automaton.states == off.automaton.states
        assert dict(on.automaton.transitions) == dict(off.automaton.transitions)
        assert on.stats.useful_states == off.stats.useful_states
        assert on.stats.useless_states == off.stats.useless_states
        assert on.stats.explored_states == off.stats.explored_states
    # caching actually engaged on the cached runs
    assert results[(True, True)].stats.cache_misses > 0
