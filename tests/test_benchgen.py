"""Tests for the workload generators."""

import pytest

from repro.automata.classify import is_normalized_sdba, is_semideterministic
from repro.benchgen import program_suite, random_sdba, sdba_corpus, suite_by_name
from repro.benchgen.programs import BenchProgram
from repro.program.cfg import build_cfg


def test_suite_is_deterministic_and_parseable():
    first = program_suite()
    second = program_suite()
    assert [p.name for p in first] == [p.name for p in second]
    for bench in first:
        program = bench.parse()
        cfg = build_cfg(program)
        assert cfg.edges, bench.name


def test_suite_names_unique():
    names = [p.name for p in program_suite()]
    assert len(names) == len(set(names))
    assert suite_by_name()["sort"].family == "nested"


def test_suite_has_both_verdict_kinds():
    expected = {p.expected for p in program_suite()}
    assert "terminating" in expected
    assert "nonterminating" in expected
    assert "unknown" in expected


def test_suite_family_diversity():
    families = {p.family for p in program_suite()}
    assert {"countdown", "nested", "branching", "nondet",
            "infeasible", "nonterm"} <= families


def test_random_sdba_is_normalized():
    for seed in range(12):
        auto = random_sdba(seed)
        assert is_semideterministic(auto)
        assert is_normalized_sdba(auto)


def test_random_sdba_deterministic_in_seed():
    a = random_sdba(7)
    b = random_sdba(7)
    assert a.states == b.states
    assert a.transitions == b.transitions
    assert random_sdba(8).transitions != a.transitions or \
        random_sdba(8).states != a.states


def test_random_sdba_sizes():
    auto = random_sdba(3, n_nondet=2, n_det=3, n_symbols=2)
    # normalization may duplicate entry states, so only a lower bound
    assert len(auto.states) >= 5
    assert len(auto.alphabet) == 2


def test_corpus_random_only():
    corpus = sdba_corpus(harvested=False, n_random=5)
    assert len(corpus) == 5
    for auto in corpus:
        assert is_normalized_sdba(auto)


@pytest.mark.slow
def test_corpus_harvested_nonempty():
    corpus = sdba_corpus(harvested=True, n_random=0)
    assert corpus, "the analysis must produce SDBAs on the suite"
    for auto in corpus[:10]:
        assert is_normalized_sdba(auto)
