"""Tests for Farkas refutations and sequence interpolants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.atoms import atom_eq, atom_ge, atom_gt, atom_le, atom_lt
from repro.logic.interpolation import farkas_refutation, sequence_interpolants
from repro.logic.linconj import LinConj, conj
from repro.logic.terms import var

x, y, z = var("x"), var("y"), var("z")


def test_refutation_exists_for_simple_contradiction():
    groups = [[atom_ge(x, 5)], [atom_le(x, 2)]]
    certificate = farkas_refutation(groups)
    assert certificate is not None
    assert all(lam >= 0 for lams in certificate for lam in lams)


def test_no_refutation_for_satisfiable():
    groups = [[atom_ge(x, 0)], [atom_le(x, 10)]]
    assert farkas_refutation(groups) is None
    assert sequence_interpolants(groups) is None


def test_interpolant_chain_shape():
    groups = [[atom_ge(x, 5)], [atom_eq(y, x)], [atom_le(y, 2)]]
    chain = sequence_interpolants(groups)
    assert chain is not None
    assert len(chain) == 4
    assert chain[0].is_true()
    assert chain[-1].is_unsat()


def test_interpolants_are_inductive():
    """I_k and A_{k+1} entail I_{k+1} for the whole chain."""
    groups = [[atom_ge(x, 5)], [atom_eq(y, x)], [atom_ge(z, y)],
              [atom_lt(z, 3)]]
    chain = sequence_interpolants(groups)
    assert chain is not None
    for k, group in enumerate(groups):
        premise = chain[k].and_(LinConj(group))
        assert premise.entails(chain[k + 1]), k


def test_interpolants_over_shared_variables_only():
    # x is local to the prefix; the cut formula must not mention it.
    groups = [[atom_ge(x, 5), atom_eq(y, x)], [atom_le(y, 2)]]
    chain = sequence_interpolants(groups)
    assert chain is not None
    assert "x" not in chain[1].variables()
    assert chain[1].entails_atom(atom_ge(y, 5))


def test_interpolants_drop_irrelevant_facts():
    # z = 99 plays no role in the contradiction.
    groups = [[atom_eq(z, 99), atom_ge(x, 5)], [atom_le(x, 2)]]
    chain = sequence_interpolants(groups)
    assert chain is not None
    assert "z" not in chain[1].variables()


def test_interpolants_with_equalities():
    groups = [[atom_eq(x, 1)], [atom_eq(y, x + 1)], [atom_eq(y, 5)]]
    chain = sequence_interpolants(groups)
    assert chain is not None
    assert chain[-1].is_unsat()


def test_integer_tightening_contradiction():
    # 0 < x < 1 is integer-infeasible; tightening exposes it to Farkas.
    groups = [[atom_gt(x, 0)], [atom_lt(x, 1)]]
    chain = sequence_interpolants(groups)
    assert chain is not None


@settings(max_examples=60, deadline=None)
@given(st.integers(-5, 5), st.integers(-5, 5), st.integers(1, 4))
def test_random_window_contradictions(low, high, steps):
    """x >= low, then x decreases per step, finally x > high'."""
    groups = [[atom_le(x, low)]]
    for _ in range(steps):
        groups.append([atom_ge(x, high + 1)])
    chain = sequence_interpolants(groups)
    if low <= high:  # contradiction exists
        assert chain is not None
        for k, group in enumerate(groups):
            assert chain[k].and_(LinConj(group)).entails(chain[k + 1])
    else:
        assert chain is None


# -- the stem-interpolant integration --------------------------------------------

def test_stem_interpolants_on_lasso():
    from repro.program.statements import Assign, Assume
    from repro.ranking.lasso import Lasso

    t = var("t")
    stem = [Assign("t", var("o") * 0 + 1),
            Assume(conj(atom_gt(x, 0)), "x>0"),
            Assume(conj(atom_eq(t, 0)), "t==0")]
    lasso = Lasso(stem, [Assign("x", x - 1)])
    chain = lasso.stem_interpolants()
    assert chain is not None
    assert chain[0].is_true()
    assert chain[-1].is_unsat()
    # the middle interpolants talk about t only (x > 0 is irrelevant)
    assert chain[2].variables() <= {"t"}


def test_stem_interpolants_none_for_feasible():
    from repro.program.statements import Assign, Assume
    from repro.ranking.lasso import Lasso

    lasso = Lasso([Assume(conj(atom_gt(x, 0)), "x>0")], [Assign("x", x - 1)])
    assert lasso.stem_interpolants() is None


def test_interpolant_certificate_validates():
    from repro.program.statements import Assign, Assume
    from repro.ranking.certificate import build_certificate, validate_certificate
    from repro.ranking.lasso import Lasso
    from repro.ranking.synthesis import prove_lasso

    t = var("t")
    stem = [Assign("t", var("o") * 0 + 1),
            Assume(conj(atom_gt(x, 0)), "x>0"),
            Assume(conj(atom_eq(t, 0)), "t==0")]
    lasso = Lasso(stem, [Assign("x", x - 1)])
    proof = prove_lasso(lasso)
    cert = build_certificate(proof, interpolate=True)
    assert validate_certificate(cert, proof.lasso.stem, proof.lasso.loop) == []
