"""Tests for the exact rational simplex, cross-checked against scipy."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.logic.lp import LinearProgram, LPStatus


def test_simple_maximize():
    lp = LinearProgram()
    x, y = lp.new_var("x"), lp.new_var("y")
    lp.add_le({x: 1, y: 2}, 4)
    lp.add_le({x: 3, y: 1}, 6)
    r = lp.maximize({x: 1, y: 1})
    assert r.status is LPStatus.OPTIMAL
    assert r.objective == Fraction(14, 5)


def test_simple_minimize():
    lp = LinearProgram()
    z = lp.new_var("z", lower=None)
    lp.add_ge({z: 1}, -10)
    lp.add_le({z: 1}, -3)
    r = lp.minimize({z: 1})
    assert r.status is LPStatus.OPTIMAL
    assert r.objective == -10
    assert r.assignment[z] == -10


def test_infeasible():
    lp = LinearProgram()
    w = lp.new_var("w")
    lp.add_ge({w: 1}, 5)
    lp.add_le({w: 1}, 2)
    assert lp.check_feasible().status is LPStatus.INFEASIBLE


def test_unbounded():
    lp = LinearProgram()
    u = lp.new_var("u")
    assert lp.maximize({u: 1}).status is LPStatus.UNBOUNDED


def test_equality_constraints():
    lp = LinearProgram()
    x, y = lp.new_var("x"), lp.new_var("y")
    lp.add_eq({x: 1, y: 1}, 10)
    lp.add_le({x: 1}, 4)
    r = lp.maximize({x: 2, y: 1})
    assert r.status is LPStatus.OPTIMAL
    assert r.objective == 14  # x=4, y=6
    assert r.assignment == {x: 4, y: 6}


def test_free_variable_split():
    lp = LinearProgram()
    x = lp.new_var("x", lower=None)
    lp.add_eq({x: 1}, -7)
    r = lp.check_feasible()
    assert r.status is LPStatus.OPTIMAL
    assert r.assignment[x] == -7


def test_degenerate_no_cycling():
    # Classic degenerate LP; Bland's rule must terminate.
    lp = LinearProgram()
    x1, x2, x3 = (lp.new_var() for _ in range(3))
    lp.add_le({x1: Fraction(1, 4), x2: -8, x3: -1}, 0)
    lp.add_le({x1: Fraction(1, 2), x2: -12, x3: -Fraction(1, 2)}, 0)
    lp.add_le({x3: 1}, 1)
    r = lp.maximize({x1: Fraction(3, 4), x2: -20, x3: Fraction(1, 2)})
    assert r.status is LPStatus.OPTIMAL
    assert r.objective == Fraction(5, 4)


def test_feasibility_with_zero_objective():
    lp = LinearProgram()
    x = lp.new_var("x")
    lp.add_ge({x: 1}, 3)
    r = lp.check_feasible()
    assert r.status is LPStatus.OPTIMAL
    assert r.assignment[x] >= 3


def test_rejects_unknown_variable():
    lp = LinearProgram()
    with pytest.raises(IndexError):
        lp.add_le({3: 1}, 0)


def test_rejects_general_lower_bound():
    lp = LinearProgram()
    with pytest.raises(ValueError):
        lp.new_var(lower=5)


@st.composite
def random_lps(draw):
    n_vars = draw(st.integers(1, 3))
    n_cons = draw(st.integers(1, 4))
    cons = []
    for _ in range(n_cons):
        coeffs = [draw(st.integers(-3, 3)) for _ in range(n_vars)]
        rhs = draw(st.integers(-5, 5))
        rel = draw(st.sampled_from(["<=", ">="]))
        cons.append((coeffs, rel, rhs))
    obj = [draw(st.integers(-3, 3)) for _ in range(n_vars)]
    return n_vars, cons, obj


@settings(max_examples=60, deadline=None)
@given(random_lps())
def test_agrees_with_scipy(problem):
    n_vars, cons, obj = problem
    lp = LinearProgram()
    xs = [lp.new_var() for _ in range(n_vars)]
    a_ub, b_ub = [], []
    for coeffs, rel, rhs in cons:
        mapping = {xs[i]: c for i, c in enumerate(coeffs)}
        if rel == "<=":
            lp.add_le(mapping, rhs)
            a_ub.append(coeffs)
            b_ub.append(rhs)
        else:
            lp.add_ge(mapping, rhs)
            a_ub.append([-c for c in coeffs])
            b_ub.append(-rhs)
    ours = lp.maximize({xs[i]: c for i, c in enumerate(obj)})
    # presolve off: with it on, HiGHS may report unbounded problems as
    # status 2 ("infeasible or unbounded" is not disambiguated)
    ref = linprog(c=[-c for c in obj], A_ub=np.array(a_ub, dtype=float),
                  b_ub=np.array(b_ub, dtype=float),
                  bounds=[(0, None)] * n_vars, method="highs",
                  options={"presolve": False})
    if ref.status == 0:
        assert ours.status is LPStatus.OPTIMAL
        assert abs(float(ours.objective) - (-ref.fun)) < 1e-6
    elif ref.status == 2:
        assert ours.status is LPStatus.INFEASIBLE
    elif ref.status == 3:
        assert ours.status is LPStatus.UNBOUNDED
