"""Tests for the concrete interpreter."""

from fractions import Fraction

from repro.program.cfg import build_cfg
from repro.program.interp import Interpreter, run_word
from repro.program.parser import parse_program
from repro.program.statements import Assign, Assume, Havoc
from repro.logic.linconj import conj
from repro.logic.atoms import atom_gt
from repro.logic.terms import var


def make(source: str):
    return build_cfg(parse_program(source))


def test_terminating_run():
    cfg = make("""
program p(x):
    while x > 0:
        x := x - 1
""")
    result = Interpreter(cfg).run({"x": 5})
    assert result.terminated
    assert result.final["x"] == 0
    assert result.steps == 11  # 5 iterations x 2 + final guard


def test_nonterminating_run_exhausts_fuel():
    cfg = make("""
program p(x):
    while x > 0:
        x := x + 1
""")
    result = Interpreter(cfg).run({"x": 1}, fuel=50)
    assert result.exhausted
    assert result.steps == 50


def test_unmentioned_variables_default_to_zero():
    cfg = make("""
program p(x, y):
    y := x + y
""")
    result = Interpreter(cfg).run({"x": 3})
    assert result.final["y"] == 3


def test_blocked_execution_counts_as_termination():
    cfg = make("""
program p(x):
    assume x > 10
    x := x - 1
""")
    result = Interpreter(cfg).run({"x": 0})
    assert result.terminated
    assert result.steps == 0


def test_trace_recording():
    cfg = make("""
program p(x):
    x := x + 1
    x := x + 1
""")
    result = Interpreter(cfg).run({"x": 0}, record_trace=True)
    assert len(result.trace) == 2
    assert all(isinstance(s, Assign) for s in result.trace)
    assert len(result.visited) == 2


def test_interpreter_deterministic_under_seed():
    cfg = make("""
program p(x, y):
    while x > 0:
        if *:
            x := x - 1
        else:
            havoc y
            assume y > 0
            x := x - y
""")
    a = Interpreter(cfg, seed=3).run({"x": 40}, fuel=4000)
    b = Interpreter(cfg, seed=3).run({"x": 40}, fuel=4000)
    assert a.steps == b.steps
    assert a.final == b.final


def test_run_word_feasible():
    x = var("x")
    word = [Assume(conj(atom_gt(x, 0))), Assign("x", x - 1)]
    out = run_word(word, {"x": 2})
    assert out is not None and out["x"] == 1


def test_run_word_infeasible():
    x = var("x")
    word = [Assume(conj(atom_gt(x, 0)))]
    assert run_word(word, {"x": 0}) is None


def test_run_word_havoc_chooser():
    x = var("x")
    word = [Havoc("x"), Assume(conj(atom_gt(x, 5)))]
    assert run_word(word, {"x": 0}) is None  # default havoc value 0
    out = run_word(word, {"x": 0}, havoc_chooser=lambda v, i: 9)
    assert out is not None and out["x"] == 9


def test_run_word_fills_missing_variables():
    y = var("y")
    word = [Assign("z", y + 1)]
    out = run_word(word, {})
    assert out["z"] == 1
