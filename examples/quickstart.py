#!/usr/bin/env python3
"""Quickstart: prove termination of the paper's running example.

The ``sort`` program (Figure 2 of the paper) has a nested loop whose
inner bound depends on the outer counter.  The analysis decomposes its
behaviors into certified modules -- each a Buechi automaton bundled
with a ranking function and a rank certificate -- until every infinite
path is covered by some module's termination argument.

Run:  python examples/quickstart.py
"""

from repro import AnalysisConfig, prove_termination_source

SORT = """
program sort(i, j):
    while i > 0:
        j := 1
        while j < i:
            j := j + 1
        i := i - 1
"""


def main() -> None:
    result = prove_termination_source(SORT, AnalysisConfig())
    print(f"verdict: {result.verdict.value}")
    print(f"modules: {len(result.modules)}")
    for k, module in enumerate(result.modules):
        auto = module.automaton
        print(f"  module {k}: stage={module.stage}  "
              f"|Q|={len(auto.states)}  f(v) = {module.ranking}")
        print(f"    generalized from: {module.source_word}")
    print()
    print("refinement rounds:")
    for rnd in result.stats.rounds:
        print(f"  {rnd.proof_kind:16s} -> {rnd.stage or '-':7s} "
              f"(difference: {rnd.difference_states} states, "
              f"complement: {rnd.complement_kind})")
    print()
    print(result.stats.summary())
    assert result.verdict.value == "terminating"


if __name__ == "__main__":
    main()
