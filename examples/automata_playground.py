#!/usr/bin/env python3
"""Using the automata layer directly: NCSB complementation + difference.

Demonstrates the paper's automata machinery independently of the
termination analysis:

1. build a semideterministic BA by hand,
2. complement it with NCSB-Original and NCSB-Lazy and compare sizes
   (Proposition 5.2: Lazy is never larger in states),
3. verify both complements against the original by sampling ultimately
   periodic words,
4. compute a language difference with and without subsumption and show
   the pruning statistics.

Run:  python examples/automata_playground.py
"""

import random

from repro.automata.complement.ncsb import NCSBLazy, NCSBOriginal, prepare_sdba
from repro.automata.difference import difference
from repro.automata.gba import ba, materialize
from repro.automata.words import UPWord, accepts


def build_sdba():
    """A BA over {a, b} accepting words with a suffix of only a's
    (entered through an 'a'); the nondeterministic part guesses where
    that suffix starts."""
    transitions = {
        ("guess", "a"): {"guess", "committed"},
        ("guess", "b"): {"guess"},
        ("committed", "a"): {"committed"},
        ("committed", "b"): {"dead"},
        ("dead", "a"): {"dead"},
        ("dead", "b"): {"dead"},
    }
    return ba({"a", "b"}, transitions, ["guess"], ["committed"])


def sample_words(count: int, seed: int = 42):
    rng = random.Random(seed)
    for _ in range(count):
        prefix = tuple(rng.choice("ab") for _ in range(rng.randint(0, 5)))
        period = tuple(rng.choice("ab") for _ in range(rng.randint(1, 4)))
        yield UPWord(prefix, period)


def main() -> None:
    sdba = prepare_sdba(build_sdba())
    print(f"input SDBA: {sdba}")

    original = materialize(NCSBOriginal(sdba))
    lazy = materialize(NCSBLazy(sdba))
    print(f"NCSB-Original complement: {len(original.states)} states, "
          f"{original.num_transitions()} transitions")
    print(f"NCSB-Lazy complement:     {len(lazy.states)} states, "
          f"{lazy.num_transitions()} transitions")
    assert len(lazy.states) <= len(original.states), "Proposition 5.2"

    for word in sample_words(300):
        in_input = accepts(sdba, word)
        assert accepts(original, word) != in_input
        assert accepts(lazy, word) != in_input
    print("complement languages verified on 300 sampled words")

    # Difference: words with infinitely many a's, minus the SDBA language.
    inf_a = ba({"a", "b"},
               {("p", "a"): {"q"}, ("p", "b"): {"p"},
                ("q", "a"): {"q"}, ("q", "b"): {"p"}},
               ["p"], ["q"])
    with_sub = difference(inf_a, sdba, subsumption=True)
    without_sub = difference(inf_a, sdba, subsumption=False)
    print(f"\ndifference L(inf-a) \\ L(sdba):")
    print(f"  with subsumption:    {len(with_sub.automaton.states)} useful states, "
          f"{with_sub.stats.explored_states} explored, "
          f"{with_sub.stats.subsumption_hits} subsumption hits")
    print(f"  without subsumption: {len(without_sub.automaton.states)} useful states, "
          f"{without_sub.stats.explored_states} explored")
    word = None
    from repro.automata.emptiness import find_accepting_lasso
    word = find_accepting_lasso(with_sub.automaton)
    print(f"  witness in the difference: {word}")
    assert accepts(inf_a, word) and not accepts(sdba, word)


if __name__ == "__main__":
    main()
