#!/usr/bin/env python3
"""Detecting nontermination, and validating the witness concretely.

The analysis reports NONTERMINATING together with a concrete witness
state (found by the fixed-point / monotone-drift detectors of
``repro.ranking.nontermination``).  This example replays each witness
in the concrete interpreter to demonstrate that the loop really does
run forever from it.

Run:  python examples/nonterminating.py
"""

from repro import prove_termination_source
from repro.program.cfg import build_cfg
from repro.program.interp import Interpreter
from repro.program.parser import parse_program

PROGRAMS = {
    "count_up": """
program count_up(x):
    while x > 0:
        x := x + 1
""",
    "fixed_point": """
program fixed_point(x, y):
    while x > y:
        y := y + 0
""",
    "drift_pair": """
program drift_pair(a, b):
    while a > 0 and b > 0:
        a := a + 2
        b := b + 1
""",
}


def main() -> None:
    for name, source in PROGRAMS.items():
        result = prove_termination_source(source)
        print(f"{name}: {result.verdict.value}")
        assert result.verdict.value == "nonterminating"
        print(f"  witness: {result.witness}")
        print(f"  witness word: {result.witness_word}")

        # Replay: run the program from the witness state with plenty of
        # fuel; it must NOT reach the exit.
        program = parse_program(source)
        cfg = build_cfg(program)
        initial = {k: v for k, v in result.witness.state.items()}
        run = Interpreter(cfg, seed=7).run(initial, fuel=5000)
        print(f"  replay from witness: {'still running' if run.exhausted else 'terminated?!'}"
              f" after {run.steps} steps")
        assert run.exhausted, "witness must yield an infinite execution"
        print()


if __name__ == "__main__":
    main()
