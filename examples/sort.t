program sort(i, j):
    while i > 0:
        j := 1
        while j < i:
            j := j + 1
        i := i - 1
