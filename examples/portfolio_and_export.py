#!/usr/bin/env python3
"""Portfolio analysis + exporting certified modules as HOA automata.

Two library features beyond the core paper reproduction:

1. ``prove_termination_portfolio`` runs the paper-faithful multi-stage
   configuration first and falls back to interpolant-based
   infeasibility modules (Ultimate-style interpolant automata) -- the
   two strategies have complementary strengths.
2. The certified-module automata can be exported in the HOA format for
   inspection with external omega-automata tooling (Spot, Owl, ...),
   and as Graphviz DOT for visualization.

Run:  python examples/portfolio_and_export.py
"""

from repro import AnalysisConfig, prove_termination, prove_termination_portfolio
from repro.automata.io import to_dot, to_hoa
from repro.program.parser import parse_program

# Terminating, but the default configuration diverges on it: every
# sampled lasso fixes the branch schedule, whose repetition is
# infeasible, and the stage-1 prefix modules remove one unrolling at a
# time.  Interpolant modules capture the parity argument at once.
TWO_PHASE = """
program two_phase(x, p):
    while x > 0:
        if p == 0:
            x := x + 1
            p := 1
        else:
            x := x - 2
"""


def main() -> None:
    program = parse_program(TWO_PHASE)

    plain = prove_termination(program, AnalysisConfig(timeout=5.0))
    print(f"default configuration:  {plain.verdict.value} "
          f"({plain.reason or 'done'}, {plain.stats.iterations} rounds)")

    result = prove_termination_portfolio(program, timeout=60.0)
    print(f"portfolio:              {result.verdict.value} "
          f"({result.stats.iterations} rounds, "
          f"config {result.stats.config})")
    assert result.verdict.value == "terminating"

    module = max(result.modules, key=lambda m: len(m.automaton.states))
    print(f"\nlargest certified module: stage={module.stage}, "
          f"|Q|={len(module.automaton.states)}, f(v) = {module.ranking}")

    hoa = to_hoa(module.automaton, name=f"two_phase-{module.stage}")
    print("\n--- HOA export (first 12 lines) ---")
    print("\n".join(hoa.splitlines()[:12]))

    dot = to_dot(module.automaton, name="module")
    print(f"\nDOT export: {len(dot.splitlines())} lines "
          f"(pipe into `dot -Tsvg` to render)")

    # round-trip through the HOA parser
    from repro.automata.io import from_hoa
    back = from_hoa(hoa)
    assert len(back.states) == len(module.automaton.states)
    print("HOA round-trip: OK")


if __name__ == "__main__":
    main()
